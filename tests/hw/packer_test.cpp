/** @file Unit tests for the Packer / Unpacker AXI-word adapters. */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "hw/packer.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

TEST(Unpacker, MovesOneWordPerCycle)
{
    // 512-bit words of 32-bit records: 16 records per word.
    sim::Fifo<Record> in(256);
    sim::Fifo<Record> out(256);
    hw::Unpacker<Record> unpacker("u", 16, in, out);
    const auto recs = makeRecords(64, Distribution::UniformRandom);
    for (const Record &r : recs)
        in.push(r);

    unpacker.tick(0);
    EXPECT_EQ(out.size(), 16u);
    unpacker.tick(1);
    EXPECT_EQ(out.size(), 32u);
    sim::SimEngine engine;
    engine.add(&unpacker);
    engine.run([&] { return out.size() == 64; }, 100);
    EXPECT_EQ(unpacker.wordsMoved(), 4u);
    EXPECT_EQ(unpacker.recordsMoved(), 64u);
    for (const Record &r : recs)
        EXPECT_EQ(out.pop(), r);
}

TEST(Unpacker, StallsWhenOutputLacksWordSpace)
{
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(20); // less than 2 words
    hw::Unpacker<Record> unpacker("u", 16, in, out);
    for (const Record &r : makeRecords(48, Distribution::Sorted))
        in.push(r);
    unpacker.tick(0);
    EXPECT_EQ(out.size(), 16u);
    unpacker.tick(1); // only 4 slots free: stall
    EXPECT_EQ(out.size(), 16u);
    for (int i = 0; i < 16; ++i)
        out.pop();
    unpacker.tick(2);
    EXPECT_EQ(out.size(), 16u);
}

TEST(Packer, PacksFullWordsAndCountsThem)
{
    sim::Fifo<Record> in(256);
    sim::Fifo<Record> out(256);
    hw::Packer<Record> packer("p", 16, in, out);
    const auto recs = makeRecords(48, Distribution::UniformRandom);
    for (const Record &r : recs)
        in.push(r);

    sim::SimEngine engine;
    engine.add(&packer);
    engine.run([&] { return out.size() >= 48; }, 100);
    EXPECT_EQ(packer.wordsMoved(), 3u);
    EXPECT_EQ(packer.recordsMoved(), 48u);
    EXPECT_TRUE(packer.quiescent());
}

TEST(Packer, TerminalFlushesPartialWord)
{
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(64);
    hw::Packer<Record> packer("p", 16, in, out);
    // 20 records then a terminal: 1 full word + 1 padded word.
    for (const Record &r : makeRecords(20, Distribution::Sorted))
        in.push(r);
    in.push(Record::terminal());

    sim::SimEngine engine;
    engine.add(&packer);
    engine.run([&] { return out.size() >= 21; }, 100);
    EXPECT_EQ(packer.wordsMoved(), 2u);
    EXPECT_EQ(packer.flushes(), 1u);
    // The boundary marker is preserved in-stream.
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(out.pop().isTerminal());
    EXPECT_TRUE(out.pop().isTerminal());
}

TEST(Packer, WordFillsAcrossSlowCycles)
{
    // Input trickles in at 4 records/cycle; words complete every 4
    // cycles but nothing is lost or reordered.
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(64);
    hw::Packer<Record> packer("p", 16, in, out);
    const auto recs = makeRecords(32, Distribution::UniformRandom);
    std::size_t fed = 0;
    sim::SimEngine engine;
    engine.add(&packer);
    engine.run(
        [&] {
            for (int i = 0; i < 4 && fed < recs.size(); ++i)
                in.push(recs[fed++]);
            return out.size() >= 32;
        },
        200);
    EXPECT_EQ(packer.wordsMoved(), 2u);
    for (const Record &r : recs)
        EXPECT_EQ(out.pop(), r);
}

TEST(PackerUnpacker, RoundTripPreservesStream)
{
    sim::Fifo<Record> a(512), b(512), c(512);
    hw::Packer<Record> packer("p", 16, a, b);
    hw::Unpacker<Record> unpacker("u", 16, b, c);
    const auto recs = makeRecords(256, Distribution::UniformRandom);
    for (const Record &r : recs)
        a.push(r);
    sim::SimEngine engine;
    engine.add(&unpacker);
    engine.add(&packer);
    engine.run([&] { return c.size() >= 256; }, 1000);
    for (const Record &r : recs)
        EXPECT_EQ(c.pop(), r);
}

} // namespace
} // namespace bonsai
