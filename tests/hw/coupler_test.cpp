/** @file Unit tests for the coupler (rate-matched forwarder). */

#include <gtest/gtest.h>

#include "common/record.hpp"
#include "hw/coupler.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

TEST(Coupler, ForwardsInOrderIncludingTerminals)
{
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(64);
    hw::Coupler<Record> coupler("c", 4, in, out);
    std::vector<Record> stream;
    for (std::uint64_t i = 1; i <= 20; ++i)
        stream.push_back(Record{i, 0});
    stream.push_back(Record::terminal());
    for (const Record &r : stream)
        in.push(r);

    sim::SimEngine engine;
    engine.add(&coupler);
    engine.run([&] { return out.size() == stream.size(); }, 1000);
    for (const Record &r : stream)
        EXPECT_EQ(out.pop(), r);
    EXPECT_EQ(coupler.recordsForwarded(), stream.size());
}

TEST(Coupler, RespectsWidthPerCycle)
{
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(64);
    hw::Coupler<Record> coupler("c", 2, in, out);
    for (std::uint64_t i = 1; i <= 10; ++i)
        in.push(Record{i, 0});
    coupler.tick(0);
    EXPECT_EQ(out.size(), 2u);
    coupler.tick(1);
    EXPECT_EQ(out.size(), 4u);
}

TEST(Coupler, StopsWhenOutputFull)
{
    sim::Fifo<Record> in(16);
    sim::Fifo<Record> out(3);
    hw::Coupler<Record> coupler("c", 8, in, out);
    for (std::uint64_t i = 1; i <= 10; ++i)
        in.push(Record{i, 0});
    coupler.tick(0);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(in.size(), 7u);
    out.pop();
    coupler.tick(1);
    EXPECT_EQ(out.size(), 3u);
}

TEST(Coupler, IdlesOnEmptyInput)
{
    sim::Fifo<Record> in(4);
    sim::Fifo<Record> out(4);
    hw::Coupler<Record> coupler("c", 4, in, out);
    coupler.tick(0);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(coupler.recordsForwarded(), 0u);
}

} // namespace
} // namespace bonsai
