/** @file Unit tests for the zero-append / zero-filter blocks. */

#include <gtest/gtest.h>

#include "common/record.hpp"
#include "hw/zero.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

TEST(ZeroAppend, InsertsTerminalEveryRunLength)
{
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(64);
    hw::ZeroAppend<Record> append("za", 4, 3, in, out);
    for (std::uint64_t i = 1; i <= 9; ++i)
        in.push(Record{i, 0});

    sim::SimEngine engine;
    engine.add(&append);
    engine.run([&] { return out.size() >= 12; }, 1000);

    std::vector<bool> terminals;
    while (!out.empty())
        terminals.push_back(out.pop().isTerminal());
    const std::vector<bool> expect = {false, false, false, true,
                                      false, false, false, true,
                                      false, false, false, true};
    EXPECT_EQ(terminals, expect);
}

TEST(ZeroFilter, StripsTerminalsAndCountsRuns)
{
    sim::Fifo<Record> in(64);
    sim::Fifo<Record> out(64);
    hw::ZeroFilter<Record> filter("zf", 4, in, out);
    for (int run = 0; run < 3; ++run) {
        for (std::uint64_t i = 1; i <= 5; ++i)
            in.push(Record{i, 0});
        in.push(Record::terminal());
    }

    sim::SimEngine engine;
    engine.add(&filter);
    engine.run([&] { return out.size() >= 15; }, 1000);
    EXPECT_EQ(out.size(), 15u);
    EXPECT_EQ(filter.runsSeen(), 3u);
    while (!out.empty())
        EXPECT_FALSE(out.pop().isTerminal());
}

TEST(ZeroRoundTrip, AppendThenFilterIsIdentity)
{
    sim::Fifo<Record> source(128);
    sim::Fifo<Record> mid(16);
    sim::Fifo<Record> sink(128);
    hw::ZeroAppend<Record> append("za", 4, 7, source, mid);
    hw::ZeroFilter<Record> filter("zf", 4, mid, sink);
    std::vector<Record> stream;
    for (std::uint64_t i = 1; i <= 50; ++i)
        stream.push_back(Record{i * 3, i});
    for (const Record &r : stream)
        source.push(r);

    sim::SimEngine engine;
    engine.add(&filter);
    engine.add(&append);
    engine.run([&] { return sink.size() >= stream.size(); }, 1000);
    ASSERT_EQ(sink.size(), stream.size());
    for (const Record &r : stream)
        EXPECT_EQ(sink.pop(), r);
    EXPECT_EQ(filter.runsSeen(), 7u); // floor(50 / 7) full runs
}

} // namespace
} // namespace bonsai
