/** @file
 * Unit tests for the pipeline BoundedQueue: FIFO delivery and
 * end-of-stream, the backpressure bound under an adversarial slow
 * consumer, poison() waking blocked peers, and poison() releasing
 * RAII items (pool leases) pending in the queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/contract.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/pool_lease.hpp"
#include "pipeline/queue.hpp"

namespace bonsai::pipeline
{
namespace
{

TEST(BoundedQueue, DeliversItemsInFifoOrderThenEndOfStream)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    q.close();

    double stall = 0.0;
    EXPECT_EQ(q.pop(stall), std::optional<int>(1));
    EXPECT_EQ(q.pop(stall), std::optional<int>(2));
    EXPECT_EQ(q.pop(stall), std::optional<int>(3));
    EXPECT_EQ(q.pop(stall), std::nullopt);
    EXPECT_EQ(q.pop(stall), std::nullopt); // end-of-stream is sticky
}

TEST(BoundedQueue, BackpressureNeverExceedsCapacity)
{
    // Adversarial speed mismatch: the producer races 200 items into a
    // capacity-2 queue while the consumer observes the queue size on
    // every pop.  The bound must hold at every observation — the
    // producer blocks instead of buffering past the capacity.
    BoundedQueue<std::uint64_t> q(2);
    BackgroundWorker producer;
    producer.post([&q] {
        for (std::uint64_t i = 0; i < 200; ++i)
            q.push(i);
        q.close();
    });

    double stall = 0.0;
    std::uint64_t next = 0;
    while (const std::optional<std::uint64_t> item = q.pop(stall)) {
        EXPECT_LE(q.size(), q.capacity());
        EXPECT_EQ(*item, next);
        ++next;
    }
    EXPECT_EQ(next, 200u);
    producer.drain();
}

TEST(BoundedQueue, PoisonWakesABlockedProducer)
{
    BoundedQueue<int> q(1);
    q.push(0); // full: the next push blocks

    std::atomic<bool> aborted{false};
    BackgroundWorker producer;
    producer.post([&q, &aborted] {
        try {
            q.push(1);
        } catch (const PipelineAborted &) {
            aborted.store(true);
        }
    });
    // Whether the poison lands before or mid-block, the push must
    // surface PipelineAborted, never enqueue.
    q.poison();
    producer.drain();
    EXPECT_TRUE(aborted.load());
}

TEST(BoundedQueue, PoisonWakesABlockedConsumer)
{
    BoundedQueue<int> q(1);

    std::atomic<bool> aborted{false};
    BackgroundWorker consumer;
    consumer.post([&q, &aborted] {
        double stall = 0.0;
        try {
            q.pop(stall);
        } catch (const PipelineAborted &) {
            aborted.store(true);
        }
    });
    q.poison();
    consumer.drain();
    EXPECT_TRUE(aborted.load());
}

TEST(BoundedQueue, PoisonReleasesPendingPoolLeases)
{
    // The unwind contract pool-backed pipelines rely on: items
    // stranded in a poisoned queue are destroyed, and RAII leases
    // return their buffers — outstanding() reaches zero without any
    // stage running a cleanup path.
    io::BufferPool<std::uint64_t> pool(
        16, 4 * 16 * sizeof(std::uint64_t)); // 4 buffers
    BoundedQueue<io::PoolLease<std::uint64_t>> q(4);
    for (int i = 0; i < 3; ++i)
        q.push(io::PoolLease<std::uint64_t>(pool));
    EXPECT_EQ(pool.outstanding(), 3u);

    q.poison();
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_THROW(q.push(io::PoolLease<std::uint64_t>(pool)),
                 PipelineAborted);
    EXPECT_EQ(pool.outstanding(), 0u); // the rejected push's lease too
}

TEST(BoundedQueue, PushAfterCloseIsAContractViolation)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    BoundedQueue<int> q(2);
    q.close();
    EXPECT_THROW(q.push(1), ContractViolation);
}

TEST(BoundedQueue, ZeroCapacityIsAContractViolation)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    EXPECT_THROW(BoundedQueue<int> q(0), ContractViolation);
}

} // namespace
} // namespace bonsai::pipeline
