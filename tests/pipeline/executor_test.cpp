/** @file
 * Unit tests for the PipelineExecutor: stage wiring preserves item
 * order end to end, per-stage telemetry is index-aligned and counts
 * traffic, and a failing stage unwinds the whole pipeline with
 * first-error-wins semantics and zero outstanding pool buffers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "io/buffer_pool.hpp"
#include "io/pool_lease.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/queue.hpp"
#include "pipeline/stage.hpp"

namespace bonsai::pipeline
{
namespace
{

TEST(PipelineExecutor, StagesPreserveItemOrderEndToEnd)
{
    // source -> double -> collect over two bounded edges; the FIFO
    // edges and one-thread-per-stage scheduling must deliver every
    // item, in order, no matter how the stage speeds interleave.
    BoundedQueue<std::uint64_t> raw(2);
    BoundedQueue<std::uint64_t> doubled(2);
    std::vector<std::uint64_t> out;

    FnStage source("source", [&raw](StageStats &stats) {
        for (std::uint64_t i = 0; i < 100; ++i)
            emit(raw, std::uint64_t(i), stats);
        raw.close();
    });
    FnStage transform("double", [&raw, &doubled](StageStats &stats) {
        while (const auto item = pull(raw, stats))
            emit(doubled, *item * 2, stats);
        doubled.close();
    });
    FnStage collect("collect", [&doubled, &out](StageStats &stats) {
        while (const auto item = pull(doubled, stats))
            out.push_back(*item);
    });

    Stage *stages[] = {&source, &transform, &collect};
    ErrorTrap trap;
    const std::vector<StageStats> stats =
        PipelineExecutor::run(stages, trap, [] {});
    trap.rethrowIfSet(); // must be a no-op on the clean path

    ASSERT_EQ(out.size(), 100u);
    for (std::uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 2 * i);

    ASSERT_EQ(stats.size(), 3u);
    EXPECT_EQ(stats[0].name, "source");
    EXPECT_EQ(stats[1].name, "double");
    EXPECT_EQ(stats[2].name, "collect");
    EXPECT_EQ(stats[0].itemsOut, 100u);
    EXPECT_EQ(stats[1].itemsIn, 100u);
    EXPECT_EQ(stats[1].itemsOut, 100u);
    EXPECT_EQ(stats[2].itemsIn, 100u);
}

TEST(PipelineExecutor, FirstErrorUnwindsWithZeroOutstandingBuffers)
{
    // A consumer that dies mid-stream while the producer is blocked
    // holding pool-backed items: the error must land in the trap as
    // the sole primary (abort echoes are not secondary errors), and
    // every pool buffer must be back — whether it was held by a
    // stage local, in flight in a queue, or stranded by the poison.
    io::BufferPool<std::uint64_t> pool(
        16, 4 * 16 * sizeof(std::uint64_t)); // 4 buffers
    BoundedQueue<io::PoolLease<std::uint64_t>> q(2);

    FnStage source("source", [&q, &pool](StageStats &stats) {
        for (int i = 0; i < 50; ++i) {
            io::PoolLease<std::uint64_t> lease(pool);
            lease.setLength(1);
            emit(q, std::move(lease), stats);
        }
        q.close();
    });
    FnStage consumer("consumer", [&q](StageStats &stats) {
        int seen = 0;
        while (const auto item = pull(q, stats)) {
            if (++seen == 3)
                throw std::runtime_error("injected stage fault");
        }
    });

    Stage *stages[] = {&source, &consumer};
    ErrorTrap trap;
    PipelineExecutor::run(stages, trap, [&q] { q.poison(); });

    std::string msg;
    try {
        trap.rethrowIfSet();
    } catch (const std::runtime_error &e) {
        msg = e.what();
    }
    EXPECT_EQ(msg, "injected stage fault");
    EXPECT_EQ(pool.outstanding(), 0u)
        << "pipeline unwind leaked pool buffers";
    EXPECT_EQ(trap.secondaryCount(), 0u)
        << "abort echoes must not count as secondary errors";
}

TEST(PipelineExecutor, EmptyStageListIsANoOp)
{
    ErrorTrap trap;
    const std::vector<StageStats> stats =
        PipelineExecutor::run({}, trap, [] {});
    EXPECT_TRUE(stats.empty());
}

} // namespace
} // namespace bonsai::pipeline
