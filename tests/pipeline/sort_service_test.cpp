/** @file
 * Tests for the SortService: several concurrent sort jobs over one
 * shared executor and one global buffer-pool budget must emit exactly
 * the bytes their serial, private-pool counterparts do, split the
 * budget fairly, stay within it at peak, and refuse loudly a job
 * count the budget cannot make progress on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/contract.hpp"
#include "common/random.hpp"
#include "common/record.hpp"
#include "io/byte_io.hpp"
#include "io/manifest.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "pipeline/sort_service.hpp"
#include "sorter/external.hpp"

namespace bonsai::pipeline
{
namespace
{

using sorter::StreamEngine;
using sorter::StreamStats;

/** Same small shape as the stream-engine tests; the budget is the
 *  GLOBAL bound shared by every concurrent job. */
StreamEngine<Record>::Options
serviceOptions(unsigned threads, std::uint64_t budget_buffers)
{
    StreamEngine<Record>::Options opt;
    opt.phase1Ell = 4;
    opt.phase2Ell = 4;
    opt.presortRun = 16;
    opt.chunkRecords = 1000;
    opt.batchRecords = 128;
    opt.bufferBudgetBytes = budget_buffers * 128 * sizeof(Record);
    opt.threads = threads;
    return opt;
}

/** One job's endpoints, owned together so vectors outlive the run. */
struct JobFixture
{
    explicit JobFixture(std::vector<Record> data)
        : input(std::move(data)),
          source{std::span<const Record>(input)}, sink(output)
    {
        output.reserve(input.size());
    }

    SortJob<Record>
    job()
    {
        SortJob<Record> j;
        j.source = &source;
        j.sink = &sink;
        j.front = &front;
        j.back = &back;
        return j;
    }

    std::vector<Record> input;
    std::vector<Record> output;
    io::MemorySource<Record> source;
    io::MemorySink<Record> sink;
    io::FileRunStore<Record> front;
    io::FileRunStore<Record> back;
};

/** The same sort run serially with a private pool — the byte-level
 *  reference every service job must match. */
std::vector<Record>
serialReference(const StreamEngine<Record>::Options &opt,
                const std::vector<Record> &data)
{
    JobFixture fix(data);
    const StreamEngine<Record> engine(opt);
    engine.sortStream(fix.source, fix.sink, fix.front, fix.back);
    return fix.output;
}

TEST(SortService, ConcurrentJobsMatchSerialPrivatePoolRuns)
{
    // Two jobs with adversarial inputs (equal-key flood vs. random)
    // share one pool; each output must be byte-identical to its
    // serial private-pool run, at every thread width — the shared
    // budget may change each job's pass shape, never its bytes.
    const auto flood = makeRecords(12'000, Distribution::FewDistinct);
    const auto random =
        makeRecords(8'000, Distribution::UniformRandom);

    for (const unsigned threads : {1u, 4u}) {
        const auto opt = serviceOptions(threads, 64);
        const auto expect_flood = serialReference(opt, flood);
        const auto expect_random = serialReference(opt, random);

        JobFixture a(flood);
        JobFixture b(random);
        const SortService<Record> service(opt);
        const std::vector<StreamStats> results =
            service.run({a.job(), b.job()});

        ASSERT_EQ(results.size(), 2u);
        EXPECT_EQ(a.output, expect_flood)
            << "concurrent job changed bytes at threads=" << threads;
        EXPECT_EQ(b.output, expect_random)
            << "concurrent job changed bytes at threads=" << threads;
        EXPECT_EQ(results[0].recordsIn, 12'000u);
        EXPECT_EQ(results[1].recordsIn, 8'000u);
    }
}

TEST(SortService, PeakPoolUsageStaysWithinTheGlobalBudget)
{
    const auto opt = serviceOptions(4, 64);
    JobFixture a(makeRecords(10'000, Distribution::UniformRandom));
    JobFixture b(makeRecords(10'000, Distribution::FewDistinct));
    const SortService<Record> service(opt);
    const std::vector<StreamStats> results =
        service.run({a.job(), b.job()});

    // Peak telemetry is pool-wide (the pool is shared), so any job's
    // report bounds the whole service's resident batch memory.
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].bufferPoolPeakBytes, 0u);
    EXPECT_LE(results[0].bufferPoolPeakBytes,
              results[0].bufferPoolBytes);
    EXPECT_EQ(results[0].bufferPoolBytes, opt.bufferBudgetBytes);
}

TEST(SortService, JobsSplitTheBudgetIntoEqualAllowances)
{
    // 16 buffers across 2 jobs leave each an 8-buffer allowance:
    // fan-in (8 - 2) / 2 = 3 and one lane.  A solo engine over the
    // same pool-sized budget plans fan-in 4 — proof the cap each job
    // reports came from the fair split, not from the global supply.
    const auto opt = serviceOptions(2, 16);
    JobFixture a(makeRecords(6'000, Distribution::UniformRandom));
    JobFixture b(makeRecords(6'000, Distribution::UniformRandom));
    const SortService<Record> service(opt);
    const std::vector<StreamStats> results =
        service.run({a.job(), b.job()});

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].effectiveEll, 3u);
    EXPECT_EQ(results[1].effectiveEll, 3u);
    EXPECT_EQ(results[0].concurrentGroups, 1u);
    EXPECT_EQ(results[1].concurrentGroups, 1u);

    StreamStats solo;
    {
        JobFixture c(makeRecords(6'000, Distribution::UniformRandom));
        const StreamEngine<Record> engine(opt);
        solo = engine.sortStream(c.source, c.sink, c.front, c.back);
    }
    EXPECT_EQ(solo.effectiveEll, 4u);
}

TEST(SortService, TooManyJobsForTheBudgetFailsLoudly)
{
    // 8 buffers across 2 jobs leave 4 each — below the 6-buffer
    // minimum of one 2-way merge lane.  The service must throw the
    // shape contract up front, not deadlock two half-budgeted jobs
    // against each other.
    const auto opt = serviceOptions(2, 8);
    JobFixture a(makeRecords(3'000, Distribution::UniformRandom));
    JobFixture b(makeRecords(3'000, Distribution::UniformRandom));
    const SortService<Record> service(opt);
    EXPECT_THROW(service.run({a.job(), b.job()}), ContractViolation);
}

TEST(SortService, EmptyJobListIsANoOp)
{
    const SortService<Record> service(serviceOptions(2, 64));
    EXPECT_TRUE(service.run({}).empty());
}

TEST(SortService, CheckpointedJobsRunDurablyNextToClassicOnes)
{
    // A mixed batch: one classic job and one checkpointed job (named
    // spills + manifest under its own directory) share the pool; the
    // durable job must emit the same bytes as its serial reference
    // and journal every chunk, and a rerun of the same job directory
    // must adopt the journaled work instead of redoing it.
    const std::string dir =
        ::testing::TempDir() + "sort_service_ckpt_job";
    io::createDirectories(dir);
    const auto flood = makeRecords(12'000, Distribution::FewDistinct);
    const auto random =
        makeRecords(8'000, Distribution::UniformRandom);
    const auto opt = serviceOptions(2, 64);
    const auto expect_flood = serialReference(opt, flood);
    const auto expect_random = serialReference(opt, random);

    {
        JobFixture a(flood);
        JobFixture b(random);
        SortJob<Record> durable = b.job();
        durable.checkpointDir = dir;
        const SortService<Record> service(opt);
        const std::vector<StreamStats> results =
            service.run({a.job(), durable});
        EXPECT_EQ(a.output, expect_flood);
        EXPECT_EQ(b.output, expect_random);
        EXPECT_GT(results[1].manifestCommits, 0u);
        EXPECT_EQ(results[1].resumedChunks, 0u);
    }

    // Same directory again, now with resume required: all journaled
    // work is adopted, only the final pass is redone.
    JobFixture b(random);
    SortJob<Record> durable = b.job();
    durable.checkpointDir = dir;
    durable.resume = true;
    const SortService<Record> service(opt);
    const std::vector<StreamStats> results =
        service.run({durable});
    EXPECT_EQ(b.output, expect_random);
    EXPECT_GT(results[0].resumedChunks, 0u);
    EXPECT_EQ(results[0].manifestCommits, 0u);

    io::removeJobArtifacts(dir);
    ::rmdir(dir.c_str());
}

} // namespace
} // namespace bonsai::pipeline
