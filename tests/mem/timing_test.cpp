/** @file Unit tests for the memory timing model. */

#include <gtest/gtest.h>

#include "mem/timing.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

mem::MemTimingConfig
config(unsigned banks, double bytes_per_cycle, std::uint64_t latency)
{
    mem::MemTimingConfig cfg;
    cfg.numBanks = banks;
    cfg.bankBytesPerCycle = bytes_per_cycle;
    cfg.interleaveBytes = 1024;
    cfg.requestLatency = latency;
    return cfg;
}

sim::Cycle
cyclesToComplete(mem::MemoryTiming &memory,
                 mem::MemoryTiming::Ticket ticket)
{
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result =
        engine.run([&] { return memory.complete(ticket); }, 100000);
    EXPECT_TRUE(result.finished);
    return result.cycles;
}

TEST(MemoryTiming, SingleReadTakesBytesOverRatePlusLatency)
{
    mem::MemoryTiming memory("m", config(1, 32.0, 10));
    const auto t = memory.requestRead(0, 1024);
    // 1024 B at 32 B/cycle = 32 cycles + 10 latency (+1 completion
    // edge visible to the predicate).
    const sim::Cycle cycles = cyclesToComplete(memory, t);
    EXPECT_GE(cycles, 42u);
    EXPECT_LE(cycles, 44u);
}

TEST(MemoryTiming, ReadsAndWritesAreConcurrent)
{
    mem::MemoryTiming memory("m", config(1, 32.0, 0));
    const auto r = memory.requestRead(0, 3200);
    const auto w = memory.requestWrite(0, 3200);
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] { return memory.complete(r) && memory.complete(w); },
        10000);
    ASSERT_TRUE(result.finished);
    // Both channels run at full rate: ~100 cycles, not ~200.
    EXPECT_LE(result.cycles, 110u);
}

TEST(MemoryTiming, BanksServeInParallel)
{
    mem::MemoryTiming memory("m", config(4, 32.0, 0));
    std::vector<mem::MemoryTiming::Ticket> tickets;
    for (unsigned b = 0; b < 4; ++b)
        tickets.push_back(memory.requestRead(b * 1024, 3200));
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] {
            for (auto t : tickets) {
                if (!memory.complete(t))
                    return false;
            }
            return true;
        },
        10000);
    ASSERT_TRUE(result.finished);
    EXPECT_LE(result.cycles, 110u); // parallel, not 4x serial
}

TEST(MemoryTiming, SingleBankRequestsSerialize)
{
    mem::MemoryTiming memory("m", config(1, 32.0, 0));
    const auto t1 = memory.requestRead(0, 3200);
    const auto t2 = memory.requestRead(4096, 3200);
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] { return memory.complete(t1) && memory.complete(t2); },
        10000);
    ASSERT_TRUE(result.finished);
    EXPECT_GE(result.cycles, 200u); // serialized on one bank
}

TEST(MemoryTiming, RoundRobinBalancesManyStreams)
{
    // Opt-in round-robin fallback: 16 streams spread over all 4 banks
    // regardless of their addresses, so total service time approaches
    // bytes / aggregate-rate.
    mem::MemTimingConfig cfg = config(4, 32.0, 0);
    cfg.bankMapping = mem::BankMapping::RoundRobin;
    mem::MemoryTiming memory("m", cfg);
    std::vector<mem::MemoryTiming::Ticket> tickets;
    for (unsigned i = 0; i < 16; ++i)
        tickets.push_back(memory.requestRead(i * 262144, 1024));
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] {
            for (auto t : tickets) {
                if (!memory.complete(t))
                    return false;
            }
            return true;
        },
        10000);
    ASSERT_TRUE(result.finished);
    // 16 KB at 128 B/cycle aggregate = 128 cycles (+ slack).
    EXPECT_LE(result.cycles, 140u);
}

TEST(MemoryTiming, AddressInterleavingSpreadsStripes)
{
    // Default mapping derives the bank from the address: batches laid
    // out across consecutive stripes land on all 4 banks in parallel.
    mem::MemoryTiming memory("m", config(4, 32.0, 0));
    std::vector<mem::MemoryTiming::Ticket> tickets;
    for (unsigned i = 0; i < 16; ++i)
        tickets.push_back(memory.requestRead(i * 1024, 1024));
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] {
            for (auto t : tickets) {
                if (!memory.complete(t))
                    return false;
            }
            return true;
        },
        10000);
    ASSERT_TRUE(result.finished);
    EXPECT_LE(result.cycles, 140u);
}

TEST(MemoryTiming, SameStripeStreamsContendForOneBank)
{
    // Regression for the dead interleaveBytes config: two streams
    // whose batches alias onto the same stripe (addresses congruent
    // mod interleave * banks) must serialize on one bank instead of
    // being spread round-robin.
    mem::MemoryTiming memory("m", config(4, 32.0, 0));
    std::vector<mem::MemoryTiming::Ticket> tickets;
    for (unsigned i = 0; i < 8; ++i) {
        tickets.push_back(memory.requestRead(i * 262144, 1024));
        tickets.push_back(memory.requestRead(131072 + i * 262144, 1024));
    }
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] {
            for (auto t : tickets) {
                if (!memory.complete(t))
                    return false;
            }
            return true;
        },
        10000);
    ASSERT_TRUE(result.finished);
    // All 16 KB serialized behind bank 0 (aggregate rate unused):
    // >= 16 requests x (32 transfer + 2 turnaround) cycles.
    EXPECT_GE(result.cycles, 16u * 34u);
}

TEST(MemoryTiming, FractionalRateByteCountersAreExact)
{
    // Regression for the credit-truncation undercount: with a
    // non-integral per-cycle rate the counters must still equal the
    // requested bytes exactly.
    mem::MemoryTiming memory("m", config(1, 2.5, 0));
    const auto r = memory.requestRead(0, 1003);
    const auto w = memory.requestWrite(0, 997);
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] { return memory.complete(r) && memory.complete(w); },
        10000);
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(memory.bytesRead(), 1003u);
    EXPECT_EQ(memory.bytesWritten(), 997u);
}

TEST(MemoryTiming, ByteCountersAccumulate)
{
    mem::MemoryTiming memory("m", config(2, 16.0, 0));
    const auto r = memory.requestRead(0, 500);
    const auto w = memory.requestWrite(1024, 700);
    sim::SimEngine engine;
    engine.add(&memory);
    engine.run([&] { return memory.complete(r) && memory.complete(w); },
               10000);
    EXPECT_EQ(memory.bytesRead(), 500u);
    EXPECT_EQ(memory.bytesWritten(), 700u);
    EXPECT_TRUE(memory.quiescent());
}

TEST(MemoryTiming, FractionalRatesAccumulate)
{
    // 0.5 bytes/cycle: 100 bytes should take ~200 cycles.
    mem::MemoryTiming memory("m", config(1, 0.5, 0));
    const auto t = memory.requestRead(0, 100);
    const sim::Cycle cycles = cyclesToComplete(memory, t);
    EXPECT_GE(cycles, 199u);
    EXPECT_LE(cycles, 202u);
}

} // namespace
} // namespace bonsai
