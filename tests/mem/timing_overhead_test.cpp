/** @file Tests for the non-pipelined per-request bank turnaround
 *  (the term that makes 1-4 KB batching matter, Section II). */

#include <gtest/gtest.h>

#include "mem/timing.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

mem::MemTimingConfig
config(std::uint64_t overhead)
{
    mem::MemTimingConfig cfg;
    cfg.numBanks = 1;
    cfg.bankBytesPerCycle = 32.0;
    cfg.requestLatency = 0;
    cfg.requestOverhead = overhead;
    return cfg;
}

sim::Cycle
timeRequests(const mem::MemTimingConfig &cfg, unsigned count,
             std::uint64_t bytes)
{
    mem::MemoryTiming memory("m", cfg);
    std::vector<mem::MemoryTiming::Ticket> tickets;
    for (unsigned i = 0; i < count; ++i)
        tickets.push_back(memory.requestRead(i * bytes, bytes));
    sim::SimEngine engine;
    engine.add(&memory);
    const auto result = engine.run(
        [&] {
            for (auto t : tickets) {
                if (!memory.complete(t))
                    return false;
            }
            return true;
        },
        1'000'000);
    EXPECT_TRUE(result.finished);
    return result.cycles;
}

TEST(MemoryTimingOverhead, ChargedOncePerRequest)
{
    // 8 requests of 256 B at 32 B/cycle: 8 cycles transfer each.
    const sim::Cycle no_overhead = timeRequests(config(0), 8, 256);
    const sim::Cycle with_overhead = timeRequests(config(4), 8, 256);
    EXPECT_GE(with_overhead, no_overhead + 8 * 4);
    EXPECT_LE(with_overhead, no_overhead + 8 * 4 + 4);
}

TEST(MemoryTimingOverhead, LargeBatchesAmortize)
{
    // Same total bytes, different request granularity: small requests
    // pay proportionally more turnaround.
    const std::uint64_t total = 16384;
    const sim::Cycle coarse = timeRequests(config(8), 4, total / 4);
    const sim::Cycle fine = timeRequests(config(8), 64, total / 64);
    EXPECT_GT(fine, coarse + 8 * 50);
    // Bandwidth loss ratio roughly (transfer+overhead)/transfer.
    const double fine_ideal = total / 32.0 + 64 * 8;
    EXPECT_NEAR(static_cast<double>(fine), fine_ideal,
                0.05 * fine_ideal);
}

TEST(MemoryTimingOverhead, ZeroOverheadBackToBackIsSeamless)
{
    const std::uint64_t total = 8192;
    const sim::Cycle t = timeRequests(config(0), 32, total / 32);
    EXPECT_NEAR(static_cast<double>(t), total / 32.0,
                0.05 * total / 32.0);
}

} // namespace
} // namespace bonsai
