/**
 * @file
 * Negative fixture: writing a BONSAI_GUARDED_BY member without
 * holding its mutex.  Must FAIL to compile under
 * -Wthread-safety -Werror with
 *     "requires holding mutex 'mu_'"
 * (the harness asserts that substring).  This is the core guarantee:
 * an unlocked access to shared job state in ThreadPool or TaskGate is
 * a compile error, not a TSan lottery ticket.
 */

#include "common/sync.hpp"

namespace
{

class Counter
{
  public:
    void
    incrementUnlocked() BONSAI_EXCLUDES(mu_)
    {
        ++value_; // BAD: mu_ is not held here.
    }

  private:
    bonsai::Mutex mu_;
    long value_ BONSAI_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.incrementUnlocked();
    return 0;
}
