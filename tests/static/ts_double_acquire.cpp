/**
 * @file
 * Negative fixture: acquiring a mutex the caller already holds (the
 * self-deadlock every BONSAI_EXCLUDES annotation exists to prevent —
 * e.g. a BufferPool method calling another locking method of the same
 * pool from inside its critical section).  Must FAIL to compile under
 * -Wthread-safety -Werror with
 *     "acquiring mutex 'mu_' that is already held"
 * (the harness asserts that substring).
 */

#include "common/sync.hpp"

namespace
{

class Gate
{
  public:
    void
    doubleAcquire() BONSAI_EXCLUDES(mu_)
    {
        mu_.lock();
        mu_.lock(); // BAD: self-deadlock.
        open_ = true;
        mu_.unlock();
        mu_.unlock();
    }

  private:
    bonsai::Mutex mu_;
    bool open_ BONSAI_GUARDED_BY(mu_) = false;
};

} // namespace

int
main()
{
    Gate g;
    g.doubleAcquire();
    return 0;
}
