/**
 * @file
 * Negative fixture: violating a declared BONSAI_ACQUIRED_BEFORE lock
 * order.  The fixture mirrors the documented resource hierarchy
 * (thread pool before task gate, docs/ARCHITECTURE.md): pool_mu_
 * declares it is acquired before gate_mu_, and the method below locks
 * them in the opposite order.  Must FAIL to compile under
 * -Wthread-safety-beta -Werror (lock-order edges are a -beta check)
 * with
 *     "must be acquired"
 * in the diagnostic (the harness asserts that substring).
 *
 * Production code never holds two bonsai locks at once (every entry
 * point is BONSAI_EXCLUDES its own leaf lock), so no real class can
 * express this bug — this fixture pins that the analyzer would catch
 * it if one ever did.
 */

#include "common/sync.hpp"

namespace
{

class Ordered
{
  public:
    void
    wrongOrder() BONSAI_EXCLUDES(pool_mu_, gate_mu_)
    {
        gate_mu_.lock();
        pool_mu_.lock(); // BAD: pool_mu_ must come first.
        ++pool_state_;
        ++gate_state_;
        pool_mu_.unlock();
        gate_mu_.unlock();
    }

  private:
    bonsai::Mutex pool_mu_ BONSAI_ACQUIRED_BEFORE(gate_mu_);
    bonsai::Mutex gate_mu_;
    long pool_state_ BONSAI_GUARDED_BY(pool_mu_) = 0;
    long gate_state_ BONSAI_GUARDED_BY(gate_mu_) = 0;
};

} // namespace

int
main()
{
    Ordered o;
    o.wrongOrder();
    return 0;
}
