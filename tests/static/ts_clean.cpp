/**
 * @file
 * Positive control for the thread-safety fixture harness: a correct
 * producer/consumer over the common/sync.hpp capabilities, including
 * the relockable-ScopedLock pattern BackgroundWorker::loop relies on.
 * This file must COMPILE CLEAN under
 * -Wthread-safety -Wthread-safety-beta -Werror; if it ever fails, the
 * harness (not the negative fixtures) is what broke.
 */

#include "common/sync.hpp"

namespace
{

class Channel
{
  public:
    void
    produce() BONSAI_EXCLUDES(mu_)
    {
        {
            bonsai::ScopedLock lock(mu_);
            ready_ = true;
        }
        cv_.notifyAll();
    }

    long
    consume() BONSAI_EXCLUDES(mu_)
    {
        bonsai::ScopedLock lock(mu_);
        while (!ready_)
            cv_.wait(mu_);
        ready_ = false;
        // Open the critical section around a long operation, then
        // re-establish it — the analyzer checks both transitions.
        lock.unlock();
        lock.lock();
        return ++cycles_;
    }

  private:
    bonsai::Mutex mu_;
    bonsai::CondVar cv_;
    bool ready_ BONSAI_GUARDED_BY(mu_) = false;
    long cycles_ BONSAI_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Channel ch;
    ch.produce();
    const long cycles = ch.consume();
    bonsai::ErrorTrap trap;
    trap.rethrowIfSet();
    return cycles == 1 ? 0 : 1;
}
