# Negative-compilation harness for the thread-safety fixtures.
#
# Runs the Clang frontend over one fixture with the thread-safety
# analysis promoted to errors and asserts the outcome:
#
#   EXPECT=CLEAN         the fixture must compile with no diagnostics
#                        (positive control — proves the harness flags
#                        actually enable the analysis);
#   EXPECT=<substring>   the compile must FAIL and stderr must contain
#                        the substring (pins the *specific* diagnostic,
#                        so a fixture failing for an unrelated reason —
#                        a typo, a missing include — still fails the
#                        test instead of passing vacuously).
#
# Invoked by ctest via
#   cmake -DCOMPILER=... -DFIXTURE=... -DSRC_DIR=... -DEXPECT=...
#         -P check_fixture.cmake
#
# Only the thread-safety groups are promoted to errors
# (-Werror=thread-safety*): a blanket -Werror would let an unrelated
# warning from a future Clang masquerade as the expected failure.

foreach(var COMPILER FIXTURE SRC_DIR EXPECT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "check_fixture.cmake: ${var} not set")
    endif()
endforeach()

execute_process(
    COMMAND ${COMPILER} -std=c++20 -fsyntax-only "-I${SRC_DIR}"
            -Wthread-safety -Wthread-safety-beta
            -Werror=thread-safety -Werror=thread-safety-beta
            -Werror=thread-safety-analysis ${FIXTURE}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(EXPECT STREQUAL "CLEAN")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "expected ${FIXTURE} to compile cleanly, got exit ${rc}:\n"
            "${err}")
    endif()
    if(NOT err STREQUAL "")
        message(FATAL_ERROR
            "expected no diagnostics from ${FIXTURE}, got:\n${err}")
    endif()
    message(STATUS "clean fixture accepted: ${FIXTURE}")
else()
    if(rc EQUAL 0)
        message(FATAL_ERROR
            "expected ${FIXTURE} to FAIL to compile, but it built — "
            "the thread-safety analysis did not catch the bug")
    endif()
    string(FIND "${err}" "${EXPECT}" found)
    if(found EQUAL -1)
        message(FATAL_ERROR
            "${FIXTURE} failed to compile, but for the wrong reason.\n"
            "expected diagnostic containing: ${EXPECT}\n"
            "actual stderr:\n${err}")
    endif()
    message(STATUS
        "negative fixture rejected as expected: ${FIXTURE}")
endif()
