/**
 * @file
 * Negative fixture: releasing a mutex the caller does not hold (an
 * unlock on the wrong path — e.g. a BackgroundWorker-style loop whose
 * error branch unlocks twice).  Must FAIL to compile under
 * -Wthread-safety -Werror with
 *     "releasing mutex 'mu_' that was not held"
 * (the harness asserts that substring).
 */

#include "common/sync.hpp"

namespace
{

class Releaser
{
  public:
    void
    releaseUnheld() BONSAI_EXCLUDES(mu_)
    {
        mu_.unlock(); // BAD: never locked on this path.
    }

  private:
    bonsai::Mutex mu_;
    long state_ BONSAI_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Releaser r;
    r.releaseUnheld();
    return 0;
}
