/**
 * @file
 * Negative fixture: waiting on a CondVar without holding the mutex it
 * is bound to — the classic lost-wakeup bug (the waiter misses the
 * notify that lands between its predicate check and its sleep).
 * CondVar::wait carries BONSAI_REQUIRES(mutex), so this must FAIL to
 * compile under -Wthread-safety -Werror with
 *     "requires holding mutex 'mu_'"
 * (the harness asserts that substring).
 */

#include "common/sync.hpp"

namespace
{

class Waiter
{
  public:
    void
    waitWithoutLock() BONSAI_EXCLUDES(mu_)
    {
        cv_.wait(mu_); // BAD: mu_ is not held.
    }

  private:
    bonsai::Mutex mu_;
    bonsai::CondVar cv_;
    bool ready_ BONSAI_GUARDED_BY(mu_) = false;
};

} // namespace

int
main()
{
    Waiter w;
    w.waitWithoutLock();
    return 0;
}
