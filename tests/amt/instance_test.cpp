/** @file Integration tests: a full AMT instance merges ell streams. */

#include <gtest/gtest.h>

#include <algorithm>

#include "amt/instance.hpp"
#include "common/random.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

/**
 * Feed one sorted run per leaf (plus terminal) and expect the root to
 * emit the full merge followed by one terminal.
 */
void
mergeOnce(unsigned p, unsigned ell, std::size_t run_len)
{
    const amt::TreeShape shape = amt::makeTreeShape(p, ell);
    amt::AmtInstance<Record> tree("amt", shape, 4096);

    std::vector<Record> all;
    for (unsigned j = 0; j < ell; ++j) {
        auto run = makeRecords(run_len, Distribution::UniformRandom,
                               100 + j);
        std::sort(run.begin(), run.end());
        for (const Record &r : run) {
            tree.leafBuffers()[j]->push(r);
            all.push_back(r);
        }
        tree.leafBuffers()[j]->push(Record::terminal());
    }
    std::sort(all.begin(), all.end());

    sim::SimEngine engine;
    tree.registerWith(engine);
    std::vector<Record> got;
    bool terminal_seen = false;
    const auto result = engine.run(
        [&] {
            while (!tree.rootOutput().empty()) {
                const Record r = tree.rootOutput().pop();
                if (r.isTerminal())
                    terminal_seen = true;
                else
                    got.push_back(r);
            }
            return terminal_seen;
        },
        1000000);
    ASSERT_TRUE(result.finished)
        << "AMT(" << p << "," << ell << ") deadlocked";
    ASSERT_EQ(got.size(), all.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].key, all[i].key);
    EXPECT_TRUE(tree.quiescent());
}

struct Shape
{
    unsigned p;
    unsigned ell;
};

class AmtShapes : public ::testing::TestWithParam<Shape>
{
};

TEST_P(AmtShapes, MergesEllSortedRuns)
{
    mergeOnce(GetParam().p, GetParam().ell, 33);
}

TEST_P(AmtShapes, MergesTupleAlignedRuns)
{
    mergeOnce(GetParam().p, GetParam().ell, 64);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AmtShapes,
    ::testing::Values(Shape{1, 2}, Shape{1, 4}, Shape{2, 2},
                      Shape{2, 8}, Shape{4, 4}, Shape{4, 16},
                      Shape{8, 2}, Shape{8, 8}, Shape{16, 4},
                      Shape{32, 2}, Shape{32, 8}, Shape{2, 32}),
    [](const ::testing::TestParamInfo<Shape> &param_info) {
        return "p" + std::to_string(param_info.param.p) + "_ell" +
            std::to_string(param_info.param.ell);
    });

TEST(AmtInstance, TwoGroupsSequentially)
{
    const unsigned p = 4, ell = 4;
    const amt::TreeShape shape = amt::makeTreeShape(p, ell);
    amt::AmtInstance<Record> tree("amt", shape, 4096);

    std::vector<std::vector<Record>> expected(2);
    for (unsigned j = 0; j < ell; ++j) {
        for (int g = 0; g < 2; ++g) {
            auto run = makeRecords(19 + 3 * g,
                                   Distribution::UniformRandom,
                                   31 * g + j);
            std::sort(run.begin(), run.end());
            for (const Record &r : run) {
                tree.leafBuffers()[j]->push(r);
                expected[g].push_back(r);
            }
            tree.leafBuffers()[j]->push(Record::terminal());
        }
    }
    for (auto &group : expected)
        std::sort(group.begin(), group.end());

    sim::SimEngine engine;
    tree.registerWith(engine);
    std::vector<std::vector<Record>> got(1);
    const auto result = engine.run(
        [&] {
            while (!tree.rootOutput().empty()) {
                const Record r = tree.rootOutput().pop();
                if (r.isTerminal())
                    got.emplace_back();
                else
                    got.back().push_back(r);
            }
            return got.size() >= 3;
        },
        1000000);
    ASSERT_TRUE(result.finished);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_TRUE(got[2].empty());
    for (int g = 0; g < 2; ++g) {
        ASSERT_EQ(got[g].size(), expected[g].size());
        for (std::size_t i = 0; i < got[g].size(); ++i)
            EXPECT_EQ(got[g][i].key, expected[g][i].key);
    }
}

} // namespace
} // namespace bonsai
