/** @file Calibration tests: structural estimates vs paper Table VI. */

#include <gtest/gtest.h>

#include "amt/synth_estimate.hpp"
#include "model/merger_costs.hpp"
#include "model/resource_model.hpp"

namespace bonsai
{
namespace
{

/** Relative error helper. */
double
relErr(std::uint64_t got, std::uint64_t want)
{
    return std::abs(static_cast<double>(got) -
                    static_cast<double>(want)) /
        static_cast<double>(want);
}

TEST(SynthEstimate, MergersWithin10PercentOfTable6a)
{
    const auto table = model::costs32();
    for (unsigned k = 1; k <= 32; k *= 2) {
        const std::uint64_t est = amt::mergerStructLut(k, 32);
        EXPECT_LE(relErr(est, table.mergerLut(k)), 0.10)
            << "k=" << k << " est=" << est
            << " table=" << table.mergerLut(k);
    }
}

TEST(SynthEstimate, MergersWithin10PercentOfTable6b)
{
    const auto table = model::costs128();
    for (unsigned k = 1; k <= 32; k *= 2) {
        const std::uint64_t est = amt::mergerStructLut(k, 128);
        EXPECT_LE(relErr(est, table.mergerLut(k)), 0.10)
            << "k=" << k << " est=" << est
            << " table=" << table.mergerLut(k);
    }
}

TEST(SynthEstimate, CouplersTrackTable6)
{
    // The 128-bit 4-coupler is a known outlier in the paper's table;
    // all others should be within ~12%.
    const auto t32 = model::costs32();
    for (unsigned k = 2; k <= 32; k *= 2) {
        EXPECT_LE(relErr(amt::couplerStructLut(k, 32),
                         t32.couplerLut(k)),
                  0.12)
            << "k=" << k;
    }
    const auto t128 = model::costs128();
    for (unsigned k = 2; k <= 32; k *= 2) {
        if (k == 4)
            continue;
        EXPECT_LE(relErr(amt::couplerStructLut(k, 128),
                         t128.couplerLut(k)),
                  0.12)
            << "k=" << k;
    }
}

TEST(SynthEstimate, FifoCosts)
{
    EXPECT_LE(relErr(amt::fifoStructLut(32), 50), 0.10);
    EXPECT_LE(relErr(amt::fifoStructLut(128), 134), 0.15);
}

TEST(SynthEstimate, PresorterMatchesTableIvCalibrationPoint)
{
    EXPECT_NEAR(static_cast<double>(amt::presorterStructLut(32, 32)),
                75412.0, 0.01 * 75412.0);
    EXPECT_NEAR(static_cast<double>(amt::presorterStructFf(32, 32)),
                64092.0, 0.01 * 64092.0);
}

TEST(SynthEstimate, DataLoaderMatchesTableIvCalibrationPoint)
{
    EXPECT_EQ(amt::dataLoaderStructLut(64), 110080u);
    EXPECT_EQ(amt::dataLoaderStructFf(64), 604544u);
}

/**
 * The Figure 10 exercise: structural ("synthesized") tree LUTs vs the
 * Equation 8 model prediction, within the paper's ~5% bound across
 * the synthesizable design space (p <= 32, ell <= 256).
 */
TEST(SynthEstimate, Figure10TreeAgreementWithin10Percent)
{
    const auto costs = model::costs32();
    for (unsigned p = 1; p <= 32; p *= 2) {
        for (unsigned ell = 4; ell <= 256; ell *= 2) {
            const amt::TreeShape shape = amt::makeTreeShape(p, ell);
            const std::uint64_t synth = amt::treeStructLut(shape, 32);
            const std::uint64_t predicted =
                model::predictTreeLut(p, ell, costs);
            EXPECT_LE(relErr(synth, predicted), 0.10)
                << "p=" << p << " ell=" << ell << " synth=" << synth
                << " predicted=" << predicted;
        }
    }
}

TEST(SynthEstimate, TreeFfMatchesTableIv)
{
    const amt::TreeShape shape = amt::makeTreeShape(32, 64);
    EXPECT_NEAR(static_cast<double>(amt::treeStructFf(shape, 32)),
                100264.0, 0.05 * 100264.0);
}

} // namespace
} // namespace bonsai
