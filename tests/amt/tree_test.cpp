/** @file Unit tests for the AMT structural tree shape. */

#include <gtest/gtest.h>

#include "amt/tree.hpp"

namespace bonsai
{
namespace
{

TEST(TreeShape, PaperFigure1Example)
{
    // AMT(4, 16): 4-merger root, two 2-mergers, four 1-mergers, eight
    // 1-mergers (Figure 1).
    const amt::TreeShape shape = amt::makeTreeShape(4, 16);
    ASSERT_EQ(shape.levels.size(), 4u);
    EXPECT_EQ(shape.levels[0].mergerK, 4u);
    EXPECT_EQ(shape.levels[0].nodeCount, 1u);
    EXPECT_EQ(shape.levels[1].mergerK, 2u);
    EXPECT_EQ(shape.levels[1].nodeCount, 2u);
    EXPECT_EQ(shape.levels[2].mergerK, 1u);
    EXPECT_EQ(shape.levels[2].nodeCount, 4u);
    EXPECT_EQ(shape.levels[3].mergerK, 1u);
    EXPECT_EQ(shape.levels[3].nodeCount, 8u);
}

TEST(TreeShape, MergerCountIsEllMinusOne)
{
    for (unsigned p : {1u, 4u, 32u}) {
        for (unsigned ell : {2u, 8u, 64u, 256u}) {
            const amt::TreeShape shape = amt::makeTreeShape(p, ell);
            EXPECT_EQ(shape.mergerCount(), ell - 1)
                << "p=" << p << " ell=" << ell;
        }
    }
}

TEST(TreeShape, RootMergerIsP)
{
    for (unsigned p : {1u, 2u, 8u, 32u}) {
        const amt::TreeShape shape = amt::makeTreeShape(p, 8);
        EXPECT_EQ(shape.levels[0].mergerK, p);
    }
}

TEST(TreeShape, DeepLevelsFloorAtOneMerger)
{
    const amt::TreeShape shape = amt::makeTreeShape(2, 64);
    for (const amt::TreeLevel &lvl : shape.levels)
        EXPECT_GE(lvl.mergerK, 1u);
    EXPECT_EQ(shape.levels.back().mergerK, 1u);
}

TEST(TreeShape, HighThroughputEverywhereWhenPLarge)
{
    // AMT(32, 4): root 32, children 16.
    const amt::TreeShape shape = amt::makeTreeShape(32, 4);
    ASSERT_EQ(shape.levels.size(), 2u);
    EXPECT_EQ(shape.levels[0].mergerK, 32u);
    EXPECT_EQ(shape.levels[1].mergerK, 16u);
}

TEST(TreeShape, MinimalTree)
{
    const amt::TreeShape shape = amt::makeTreeShape(1, 2);
    ASSERT_EQ(shape.levels.size(), 1u);
    EXPECT_EQ(shape.levels[0].mergerK, 1u);
    EXPECT_EQ(shape.mergerCount(), 1u);
}

} // namespace
} // namespace bonsai
