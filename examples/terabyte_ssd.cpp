/**
 * @file
 * Terabyte-scale SSD sorting example (Section IV-C).
 *
 * Prints the full two-phase Bonsai plan for sorting 2 TB of gensort
 * records on an F1 + 2 TB SSD, then executes a capacity-scaled
 * version of the same plan in memory (the "SSD" shrunk by a scale
 * factor so the example runs in seconds) and validates the output.
 *
 * Build & run:  ./build/examples/terabyte_ssd [scale_records]
 */

#include <cstdio>
#include <cstdlib>

#include "common/checks.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "sorter/sorters.hpp"

int
main(int argc, char **argv)
{
    using namespace bonsai;

    // ---- The full-scale plan the paper's Table V describes.
    std::printf("Full-scale plan: 2 TB of 100-byte gensort records "
                "(16-byte packed) on AWS F1 + SSD\n");
    model::ArrayParams full{2 * kTB / 16, 16};
    const auto plan = core::planSsdSort(full, core::awsF1(), {},
                                        core::SsdParams{});
    if (!plan) {
        std::printf("no feasible plan\n");
        return 1;
    }
    std::printf("  phase 1: %u-deep pipeline of AMT(%u, %u) at "
                "%.1f GB/s  -> %.0f s\n",
                plan->phase1.config.lambdaPipe, plan->phase1.config.p,
                plan->phase1.config.ell,
                plan->phase1.perf.throughputBytesPerSec / kGB,
                plan->phase1Seconds);
    std::printf("  reprogram FPGA: %.1f s\n", plan->reprogramSeconds);
    std::printf("  phase 2: AMT(%u, %u), %u SSD round trip(s) "
                "-> %.0f s\n",
                plan->phase2.config.p, plan->phase2.config.ell,
                plan->phase2Stages, plan->phase2Seconds);
    std::printf("  total: %.1f s (%.2f GB/s end to end)\n\n",
                plan->totalSeconds(),
                2 * kTB / plan->totalSeconds() / kGB);

    // ---- Scaled-down execution with real data.
    std::size_t n = 400'000;
    if (argc > 1)
        n = std::strtoull(argv[1], nullptr, 10);
    std::printf("Scaled execution: %zu gensort records, DRAM scaled "
                "to 1/8 of the input\n", n);
    GensortGenerator gen(2020);
    auto packed = packGensort(gen.generate(0, n));
    const Fingerprint before =
        fingerprint(std::span<const Record128>(packed));

    model::HardwareParams hw = core::awsF1();
    hw.cDram = n * 16 / 8; // force multi-chunk two-phase behaviour
    sorter::SsdSorter sorter(hw);
    const auto report = sorter.sort(packed, 16);

    const bool ok = isSorted(std::span<const Record128>(packed)) &&
        before == fingerprint(std::span<const Record128>(packed));
    std::printf("  chunks of %llu records, %u phase-2 round trip(s)\n",
                static_cast<unsigned long long>(
                    report.plan.chunkRecords),
                report.plan.phase2Stages);
    std::printf("  host execution: %.1f ms, output %s\n",
                report.hostSeconds * 1e3,
                ok ? "sorted and complete (valsort-style check)"
                   : "INVALID");
    return ok ? 0 : 1;
}
