/**
 * @file
 * Terabyte-scale SSD sorting example (Section IV-C).
 *
 * Prints the full two-phase Bonsai plan for sorting 2 TB of gensort
 * records on an F1 + 2 TB SSD, then executes a capacity-scaled
 * version of the same plan in memory (the "SSD" shrunk by a scale
 * factor so the example runs in seconds) and validates the output.
 * Finally runs the same dataset through the out-of-core streaming
 * path — spill files, bounded buffer pool, prefetch overlap — and
 * checks it reproduces the in-memory result byte for byte.
 *
 * Build & run:  ./build/examples/terabyte_ssd [scale_records]
 */

#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/checks.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "io/stream.hpp"
#include "sorter/sorters.hpp"

int
main(int argc, char **argv)
{
    using namespace bonsai;

    // ---- The full-scale plan the paper's Table V describes.
    std::printf("Full-scale plan: 2 TB of 100-byte gensort records "
                "(16-byte packed) on AWS F1 + SSD\n");
    model::ArrayParams full{2 * kTB / 16, 16};
    const auto plan = core::planSsdSort(full, core::awsF1(), {},
                                        core::SsdParams{});
    if (!plan) {
        std::printf("no feasible plan\n");
        return 1;
    }
    std::printf("  phase 1: %u-deep pipeline of AMT(%u, %u) at "
                "%.1f GB/s  -> %.0f s\n",
                plan->phase1.config.lambdaPipe, plan->phase1.config.p,
                plan->phase1.config.ell,
                plan->phase1.perf.throughputBytesPerSec / kGB,
                plan->phase1Seconds);
    std::printf("  reprogram FPGA: %.1f s\n", plan->reprogramSeconds);
    std::printf("  phase 2: AMT(%u, %u), %u SSD round trip(s) "
                "-> %.0f s\n",
                plan->phase2.config.p, plan->phase2.config.ell,
                plan->phase2Stages, plan->phase2Seconds);
    std::printf("  total: %.1f s (%.2f GB/s end to end)\n\n",
                plan->totalSeconds(),
                2 * kTB / plan->totalSeconds() / kGB);

    // ---- Scaled-down execution with real data.
    std::size_t n = 400'000;
    if (argc > 1)
        n = std::strtoull(argv[1], nullptr, 10);
    std::printf("Scaled execution: %zu gensort records, DRAM scaled "
                "to 1/8 of the input\n", n);
    GensortGenerator gen(2020);
    auto packed = packGensort(gen.generate(0, n));
    const Fingerprint before =
        fingerprint(std::span<const Record128>(packed));

    model::HardwareParams hw = core::awsF1();
    hw.cDram = n * 16 / 8; // force multi-chunk two-phase behaviour
    sorter::SsdSorter sorter(hw);
    const auto report = sorter.sort(packed, 16);

    const bool ok = isSorted(std::span<const Record128>(packed)) &&
        before == fingerprint(std::span<const Record128>(packed));
    std::printf("  chunks of %llu records, %u phase-2 round trip(s)\n",
                static_cast<unsigned long long>(
                    report.plan.chunkRecords),
                report.plan.phase2Stages);
    std::printf("  host execution: %.1f ms, output %s\n",
                report.hostSeconds * 1e3,
                ok ? "sorted and complete (valsort-style check)"
                   : "INVALID");

    // ---- The same records again, but truly out of core: streamed
    // from a source through spill files into a sink, with resident
    // memory bounded by a budget far below the dataset size.
    auto unsorted = packGensort(gen.generate(0, n));
    std::printf("\nStreamed execution: same records, 4 MiB resident "
                "budget, spill files in $TMPDIR\n");
    io::MemorySource<Record128> source{
        std::span<const Record128>(unsorted)};
    std::vector<Record128> streamed;
    streamed.reserve(unsorted.size());
    io::MemorySink<Record128> sink(streamed);
    sorter::SsdSorter::StreamOptions opts;
    opts.memoryBudgetBytes = 4ULL << 20;
    const auto sreport =
        sorter.sortStream(source, sink, 16, opts);
    const auto &s = sreport.stream;
    std::printf("  %llu chunk(s), %u merge pass(es) at fan-in %u "
                "(batch b = %llu records)\n",
                static_cast<unsigned long long>(s.phase1Chunks),
                s.mergePasses, s.effectiveEll,
                static_cast<unsigned long long>(s.batchRecords));
    std::printf("  spill: %.1f MiB written, %.1f MiB read; stalls "
                "%.1f ms read / %.1f ms write\n",
                static_cast<double>(s.spillBytesWritten) / (1 << 20),
                static_cast<double>(s.spillBytesRead) / (1 << 20),
                s.readStallSeconds * 1e3, s.writeStallSeconds * 1e3);
    const bool sok = streamed == packed;
    std::printf("  streamed output %s the in-memory result\n",
                sok ? "matches" : "DOES NOT MATCH");
    return ok && sok ? 0 : 1;
}
