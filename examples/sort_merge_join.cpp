/**
 * @file
 * Sort-merge join example (the paper's relational-database motivation:
 * "the sort-merge join algorithm ... with sorting as its main
 * computational kernel").
 *
 * Two synthetic tables — orders(customer_id, order_id) and
 * customers(customer_id, region) — are sorted on the join key with
 * the Bonsai DRAM sorter, then merge-joined in a single linear pass.
 *
 * Build & run:  ./build/examples/sort_merge_join [orders]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "sorter/sorters.hpp"

int
main(int argc, char **argv)
{
    using namespace bonsai;
    std::size_t num_orders = 2'000'000;
    if (argc > 1)
        num_orders = std::strtoull(argv[1], nullptr, 10);
    const std::size_t num_customers = num_orders / 10 + 1;

    // Build tables: key = customer id, value = payload.
    std::vector<Record> orders, customers;
    SplitMix64 rng(7);
    orders.reserve(num_orders);
    for (std::size_t i = 0; i < num_orders; ++i)
        orders.push_back(
            Record{1 + rng.nextBounded(num_customers), i});
    customers.reserve(num_customers);
    for (std::size_t c = 0; c < num_customers; ++c) {
        // 80% of customer ids exist; value = region id.
        if (rng.nextDouble() < 0.8)
            customers.push_back(Record{c + 1, rng.nextBounded(16)});
    }
    std::printf("orders: %zu rows, customers: %zu rows\n",
                orders.size(), customers.size());

    // Sort both tables on the join key with Bonsai.
    sorter::DramSorter sorter;
    const auto r1 = sorter.sort(orders, 8);
    const auto r2 = sorter.sort(customers, 8);
    if (!isSorted(std::span<const Record>(orders)) ||
        !isSorted(std::span<const Record>(customers))) {
        std::printf("ERROR: sort failed\n");
        return 1;
    }
    std::printf("sorted with AMT(%u, %u); modeled FPGA time "
                "%.2f + %.2f ms\n",
                r1.config.p, r1.config.ell, toMs(r1.modeledSeconds),
                toMs(r2.modeledSeconds));

    // Single-pass merge join.
    std::size_t i = 0, j = 0;
    std::uint64_t matches = 0, region_hist[16] = {};
    while (i < orders.size() && j < customers.size()) {
        if (orders[i].key < customers[j].key) {
            ++i;
        } else if (customers[j].key < orders[i].key) {
            ++j;
        } else {
            // Customers are unique per key; emit all matching orders.
            const std::uint64_t key = orders[i].key;
            while (i < orders.size() && orders[i].key == key) {
                ++matches;
                ++region_hist[customers[j].value % 16];
                ++i;
            }
            ++j;
        }
    }
    std::printf("join produced %llu rows (%.1f%% of orders matched)\n",
                static_cast<unsigned long long>(matches),
                100.0 * matches / orders.size());
    std::uint64_t top_region = 0;
    for (unsigned r = 1; r < 16; ++r) {
        if (region_hist[r] > region_hist[top_region])
            top_region = r;
    }
    std::printf("busiest region: %llu with %llu joined rows\n",
                static_cast<unsigned long long>(top_region),
                static_cast<unsigned long long>(
                    region_hist[top_region]));
    return 0;
}
