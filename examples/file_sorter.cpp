/**
 * @file
 * File-based sort-benchmark workflow (gensort / sort / valsort), the
 * way a downstream user would actually run Bonsai on data at rest:
 *
 *   file_sorter gen <records> <file>           generate 100-byte records
 *   file_sorter sort <in> <out> [--threads N]  Bonsai-sort a record file
 *   file_sorter ssdsort <in> <out>             in-memory two-phase sort
 *   file_sorter extsort <in> <out> [--budget-mb N]
 *                       [--checkpoint-dir D] [--resume]
 *                                              out-of-core streamed sort
 *   file_sorter checkpoint-status <dir>        inspect a job manifest
 *   file_sorter validate <file>                valsort-style check
 *
 * Records on disk use the Jim Gray sort-benchmark layout (10-byte key,
 * 90-byte value).  `sort` packs them to 16-byte AMT records (10-byte
 * key + 6-byte hashed index, Section VI-A), sorts with the DRAM
 * sorter, and rewrites the full 100-byte records in key order.
 * `ssdsort` and `extsort` sort the 100-byte records directly with the
 * two-phase SSD sorter; `extsort` streams them through spill files
 * with resident memory bounded by --budget-mb (default 64), so it
 * sorts files far larger than the budget — its output is byte-for-byte
 * the file `ssdsort` produces.
 *
 * With --checkpoint-dir, extsort runs crash-consistently: spills and
 * a durable job manifest live under the given directory, and a rerun
 * of the identical command after a crash (add --resume to *require*
 * a valid checkpoint) picks up from the last committed chunk or merge
 * pass.  The job directory is cleaned once the output is durable.
 * `checkpoint-status` prints a one-line summary of a job directory's
 * manifest (used by the crash-recovery CI job to stage its kills).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <unordered_map>

#include "common/gensort.hpp"
#include "io/byte_io.hpp"
#include "io/manifest.hpp"
#include "io/stream.hpp"
#include "sorter/sorters.hpp"

namespace
{

using namespace bonsai;

std::vector<GensortRecord>
readRecords(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::vector<GensortRecord> recs;
    GensortRecord rec;
    while (in.read(reinterpret_cast<char *>(rec.bytes.data()),
                   GensortRecord::kBytes)) {
        recs.push_back(rec);
    }
    return recs;
}

void
writeRecords(const char *path, const std::vector<GensortRecord> &recs)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const GensortRecord &rec : recs) {
        out.write(reinterpret_cast<const char *>(rec.bytes.data()),
                  GensortRecord::kBytes);
    }
}

int
cmdGen(std::uint64_t n, const char *path)
{
    GensortGenerator gen(2020);
    writeRecords(path, gen.generate(0, n));
    std::printf("wrote %llu records (%llu bytes) to %s\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n * 100), path);
    return 0;
}

int
cmdSort(const char *in_path, const char *out_path, unsigned threads)
{
    auto recs = readRecords(in_path);
    std::printf("read %zu records (%u host thread%s)\n", recs.size(),
                threads, threads == 1 ? "" : "s");

    // Pack to 16-byte AMT records; remember each packed record's
    // position so the 100-byte payloads can be emitted in key order.
    auto packed = packGensort(recs);
    for (std::size_t i = 0; i < packed.size(); ++i)
        packed[i].value = i; // carry the source index instead

    sorter::DramSorter sorter;
    sorter.setThreads(threads);
    const auto report = sorter.sort(packed, 16);
    std::printf("sorted with AMT(%u, %u), %u stages; modeled FPGA "
                "time %.2f ms (+%.2f ms host I/O)\n",
                report.config.p, report.config.ell, report.stages,
                toMs(report.modeledSeconds), toMs(report.ioSeconds));

    std::vector<GensortRecord> sorted;
    sorted.reserve(recs.size());
    for (const Record128 &rec : packed)
        sorted.push_back(recs[rec.value]);
    writeRecords(out_path, sorted);
    std::printf("wrote %s\n", out_path);
    return 0;
}

int
cmdSsdSort(const char *in_path, const char *out_path, unsigned threads)
{
    auto recs = readRecords(in_path);
    std::printf("read %zu records (%u host thread%s)\n", recs.size(),
                threads, threads == 1 ? "" : "s");
    sorter::SsdSorter sorter;
    sorter.setThreads(threads);
    const auto report = sorter.sort(recs, GensortRecord::kBytes);
    std::printf("two-phase sort: %llu chunk(s), %u merge pass(es), "
                "%.1f ms host\n",
                static_cast<unsigned long long>(
                    report.stream.phase1Chunks),
                report.stream.mergePasses, report.hostSeconds * 1e3);
    writeRecords(out_path, recs);
    std::printf("wrote %s\n", out_path);
    return 0;
}

int
cmdExtSort(const char *in_path, const char *out_path, unsigned threads,
           std::uint64_t budget_mb, const std::string &checkpoint_dir,
           bool resume)
{
    io::FileSource<GensortRecord> source(io::ByteFile::openRead(in_path));
    io::FileSink<GensortRecord> sink(io::ByteFile::create(out_path));
    std::printf("streaming %llu records under a %llu MiB budget "
                "(%u host thread%s)\n",
                static_cast<unsigned long long>(source.totalRecords()),
                static_cast<unsigned long long>(budget_mb), threads,
                threads == 1 ? "" : "s");
    if (!checkpoint_dir.empty())
        std::printf("checkpointing to %s%s\n", checkpoint_dir.c_str(),
                    resume ? " (resume required)" : "");

    sorter::SsdSorter sorter;
    sorter.setThreads(threads);
    sorter::SsdSorter::StreamOptions opts;
    opts.memoryBudgetBytes = budget_mb << 20;
    opts.checkpointDir = checkpoint_dir;
    opts.resume = resume;
    const auto report = sorter.sortStream(source, sink,
                                          GensortRecord::kBytes, opts);

    const auto &s = report.stream;
    if (!s.resumeFallback.empty())
        std::printf("resume fallback: %s\n", s.resumeFallback.c_str());
    if (s.resumedChunks + s.resumedPasses > 0)
        std::printf("resume: skipped %llu chunk spill(s) and %llu "
                    "merge pass(es) committed by the previous "
                    "attempt\n",
                    static_cast<unsigned long long>(s.resumedChunks),
                    static_cast<unsigned long long>(s.resumedPasses));
    if (s.manifestCommits > 0)
        std::printf("checkpoint: %llu manifest commit(s)\n",
                    static_cast<unsigned long long>(
                        s.manifestCommits));
    std::printf("phase 1: %llu chunk(s) spilled in %.1f ms\n",
                static_cast<unsigned long long>(s.phase1Chunks),
                s.phase1Seconds * 1e3);
    std::printf("phase 2: %u pass(es) at fan-in %u (batch b = %llu "
                "records, pool %llu KiB) in %.1f ms\n",
                s.mergePasses, s.effectiveEll,
                static_cast<unsigned long long>(s.batchRecords),
                static_cast<unsigned long long>(s.bufferPoolBytes >> 10),
                s.phase2Seconds * 1e3);
    std::printf("phase 2 parallelism: %u merge lane(s), final pass "
                "in %u slice(s); pool peak %llu KiB\n",
                s.concurrentGroups, s.finalSlices,
                static_cast<unsigned long long>(
                    s.bufferPoolPeakBytes >> 10));
    std::printf("spill traffic: %.1f MiB written, %.1f MiB read; "
                "stalls %.1f ms read / %.1f ms write\n",
                static_cast<double>(s.spillBytesWritten) / (1 << 20),
                static_cast<double>(s.spillBytesRead) / (1 << 20),
                s.readStallSeconds * 1e3, s.writeStallSeconds * 1e3);
    if (s.ioTransientRetries + s.ioEintrRetries + s.ioShortTransfers +
            s.secondaryErrors >
        0)
        std::printf("io resilience: %llu transient retr%s, %llu EINTR "
                    "retr%s, %llu short transfer(s), %llu secondary "
                    "error(s)\n",
                    static_cast<unsigned long long>(s.ioTransientRetries),
                    s.ioTransientRetries == 1 ? "y" : "ies",
                    static_cast<unsigned long long>(s.ioEintrRetries),
                    s.ioEintrRetries == 1 ? "y" : "ies",
                    static_cast<unsigned long long>(s.ioShortTransfers),
                    static_cast<unsigned long long>(s.secondaryErrors));
    if (!checkpoint_dir.empty()) {
        // The output is durable (FileSink::finish synced file and
        // directory); the checkpoint has served its purpose.
        io::removeJobArtifacts(checkpoint_dir);
        std::printf("cleaned job directory %s\n",
                    checkpoint_dir.c_str());
    }
    std::printf("wrote %s\n", out_path);
    return 0;
}

int
cmdCheckpointStatus(const char *dir)
{
    const io::ManifestLoadResult r = io::loadManifest(dir);
    if (r.status != io::ManifestStatus::Ok) {
        std::fprintf(stderr, "file_sorter: %s\n", r.error.c_str());
        return 1;
    }
    const io::JobManifest &m = r.manifest;
    std::printf("chunks=%llu phase1=%d passes=%u runs=%zu store=%s\n",
                static_cast<unsigned long long>(m.chunksDone),
                m.phase1Complete ? 1 : 0, m.passesDone,
                m.runs.size(),
                m.currentStore == 0 ? "front" : "back");
    return 0;
}

int
cmdValidate(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    // Stream the file through a bounded batch buffer: validation
    // memory stays one batch regardless of file size, matching what
    // extsort promises for the sort itself.
    constexpr std::size_t kBatchRecords = 1 << 14;
    std::vector<GensortRecord> batch(kBatchRecords);
    ValsortAccumulator acc;
    for (;;) {
        in.read(reinterpret_cast<char *>(batch.data()),
                static_cast<std::streamsize>(batch.size() *
                                             GensortRecord::kBytes));
        const std::uint64_t got =
            static_cast<std::uint64_t>(in.gcount()) /
            GensortRecord::kBytes;
        acc.feed(batch.data(), got);
        if (got < batch.size())
            break;
    }
    const ValsortSummary &summary = acc.summary();
    std::printf("records    : %llu\n",
                static_cast<unsigned long long>(summary.records));
    std::printf("checksum   : %016llx\n",
                static_cast<unsigned long long>(summary.checksum));
    std::printf("duplicates : %llu\n",
                static_cast<unsigned long long>(summary.duplicateKeys));
    if (summary.sorted) {
        std::printf("order      : SORTED\n");
        return 0;
    }
    std::printf("order      : NOT SORTED (first violation at record "
                "%llu)\n",
                static_cast<unsigned long long>(summary.unorderedAt));
    return 1;
}

int
run(int argc, char **argv)
{
    // Strip the optional "--threads N" / "--budget-mb N" /
    // "--checkpoint-dir D" / "--resume" flags from anywhere in argv.
    unsigned threads = 1;
    std::uint64_t budget_mb = 64;
    std::string checkpoint_dir;
    bool resume = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        else if (std::strcmp(argv[i], "--budget-mb") == 0 &&
                 i + 1 < argc)
            budget_mb = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strncmp(argv[i], "--budget-mb=", 12) == 0)
            budget_mb = std::strtoull(argv[i] + 12, nullptr, 10);
        else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 &&
                 i + 1 < argc)
            checkpoint_dir = argv[++i];
        else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0)
            checkpoint_dir = argv[i] + 17;
        else if (std::strcmp(argv[i], "--resume") == 0)
            resume = true;
        else
            args.push_back(argv[i]);
    }
    const int nargs = static_cast<int>(args.size());

    if (nargs >= 4 && std::strcmp(args[1], "gen") == 0)
        return cmdGen(std::strtoull(args[2], nullptr, 10), args[3]);
    if (nargs >= 4 && std::strcmp(args[1], "sort") == 0)
        return cmdSort(args[2], args[3], threads);
    if (nargs >= 4 && std::strcmp(args[1], "ssdsort") == 0)
        return cmdSsdSort(args[2], args[3], threads);
    if (nargs >= 4 && std::strcmp(args[1], "extsort") == 0)
        return cmdExtSort(args[2], args[3], threads, budget_mb,
                          checkpoint_dir, resume);
    if (nargs >= 3 &&
        std::strcmp(args[1], "checkpoint-status") == 0)
        return cmdCheckpointStatus(args[2]);
    if (nargs >= 3 && std::strcmp(args[1], "validate") == 0)
        return cmdValidate(args[2]);

    // No arguments: run the whole workflow on a temporary file as a
    // self-demonstration.
    std::printf("usage: file_sorter [--threads N] [--budget-mb N] "
                "[--checkpoint-dir D] [--resume] "
                "gen <records> <file> | sort <in> <out> | "
                "ssdsort <in> <out> | extsort <in> <out> | "
                "checkpoint-status <dir> | validate <file>\n");
    std::printf("\nrunning self-demo with 100,000 records...\n");
    cmdGen(100'000, "/tmp/bonsai_demo.dat");
    cmdSort("/tmp/bonsai_demo.dat", "/tmp/bonsai_demo.sorted", threads);
    return cmdValidate("/tmp/bonsai_demo.sorted");
}

} // namespace

int
main(int argc, char **argv)
{
    // I/O failures (a full spill device, an unreadable input, an
    // unwritable output) surface as one exception from the sort call;
    // report it like a tool, not a crash.
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "file_sorter: %s\n", e.what());
        return 1;
    }
}
