/**
 * @file
 * MapReduce shuffle example (the paper's first motivating workload:
 * "MapReduce keys coming out of the mapping stage must be sorted
 * prior to being fed into the reduce stage").
 *
 * A synthetic map stage emits (word-hash, mapper-id) pairs from a
 * Zipf-like word distribution across several mappers; the shuffle
 * sorts all pairs by key with the Bonsai DRAM sorter so the reduce
 * stage can stream contiguous key groups.  The example then runs a
 * word-count reduce over the sorted stream and prints the heaviest
 * keys.
 *
 * Build & run:  ./build/examples/mapreduce_shuffle [pairs_per_mapper]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "sorter/sorters.hpp"

namespace
{

using namespace bonsai;

/** Zipf-ish word id: rank ~ floor(1/u) capped to the vocabulary. */
std::uint64_t
zipfWord(SplitMix64 &rng, std::uint64_t vocabulary)
{
    const double u = rng.nextDouble();
    const auto rank = static_cast<std::uint64_t>(1.0 / (u + 1e-9));
    return 1 + std::min(rank, vocabulary - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t per_mapper = 500'000;
    if (argc > 1)
        per_mapper = std::strtoull(argv[1], nullptr, 10);
    constexpr unsigned kMappers = 8;
    constexpr std::uint64_t kVocabulary = 50'000;

    // ---- Map stage: each mapper emits unsorted (key, mapper) pairs.
    std::vector<Record> pairs;
    pairs.reserve(per_mapper * kMappers);
    for (unsigned m = 0; m < kMappers; ++m) {
        SplitMix64 rng(1000 + m);
        for (std::size_t i = 0; i < per_mapper; ++i)
            pairs.push_back(Record{zipfWord(rng, kVocabulary), m});
    }
    std::printf("map stage    : %u mappers emitted %zu pairs\n",
                kMappers, pairs.size());

    // ---- Shuffle: Bonsai sorts the full key space.
    sorter::DramSorter shuffle;
    const auto report = shuffle.sort(pairs, /*r=*/8);
    if (!isSorted(std::span<const Record>(pairs))) {
        std::printf("ERROR: shuffle output is not sorted\n");
        return 1;
    }
    std::printf("shuffle      : AMT(%u, %u), %u merge stages, "
                "modeled FPGA time %.2f ms\n",
                report.config.p, report.config.ell, report.stages,
                toMs(report.modeledSeconds));

    // ---- Reduce: stream contiguous key groups (word count).
    std::uint64_t groups = 0;
    std::uint64_t best_key = 0, best_count = 0, current = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        ++current;
        if (i + 1 == pairs.size() ||
            pairs[i + 1].key != pairs[i].key) {
            ++groups;
            if (current > best_count) {
                best_count = current;
                best_key = pairs[i].key;
            }
            current = 0;
        }
    }
    std::printf("reduce stage : %llu distinct keys; heaviest key %llu "
                "with %llu pairs (%.1f%%)\n",
                static_cast<unsigned long long>(groups),
                static_cast<unsigned long long>(best_key),
                static_cast<unsigned long long>(best_count),
                100.0 * best_count / pairs.size());
    return 0;
}
