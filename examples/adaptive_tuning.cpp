/**
 * @file
 * Adaptive tuning example: the core of what makes Bonsai "adaptive".
 *
 * Shows the optimizer re-configuring the merge tree across (a) problem
 * sizes from 64 MB to 64 GB, (b) three memory hierarchies (F1 DDR4,
 * HBM, SSD-backed), and (c) record widths — and prints the ranked
 * fallback list the paper describes ("if the most optimal design is
 * impossible to synthesize ... other close-to-optimal configurations
 * can be tried").
 *
 * Build & run:  ./build/examples/adaptive_tuning
 */

#include <cstdio>

#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "core/ssd_planner.hpp"

namespace
{

using namespace bonsai;

void
show(const char *label, const model::BonsaiInputs &in,
     core::SearchSpace space = {})
{
    core::Optimizer opt(in, space);
    const auto best = opt.best(core::Objective::Latency);
    if (!best) {
        std::printf("  %-28s -> no feasible configuration\n", label);
        return;
    }
    std::printf("  %-28s -> %2u x AMT(%2u, %3u), %u stages, "
                "%8.3f s, %3.0f%% LUT, b=%llu\n",
                label, best->config.lambdaUnrl, best->config.p,
                best->config.ell, best->perf.stages,
                best->perf.latencySeconds,
                100.0 * best->resources.totalLut() / in.hw.cLut,
                static_cast<unsigned long long>(best->batchBytes));
}

} // namespace

int
main()
{
    using namespace bonsai;

    std::printf("1. Adapting to problem size (F1 DDR4, 32-bit "
                "records):\n");
    for (std::uint64_t bytes :
         {64 * kMB, 1 * kGB, 16 * kGB, 64 * kGB}) {
        model::BonsaiInputs in;
        in.array = {bytes / 4, 4};
        in.hw = core::awsF1();
        char label[32];
        std::snprintf(label, sizeof(label), "%llu MB",
                      static_cast<unsigned long long>(bytes / kMB));
        show(label, in);
    }

    std::printf("\n2. Adapting to the memory hierarchy (16 GB "
                "input):\n");
    {
        model::BonsaiInputs in;
        in.array = {16ULL * kGB / 4, 4};
        in.hw = core::awsF1();
        show("DDR4, 32 GB/s", in);
        in.hw = core::awsF1SingleBank();
        show("single DDR4 bank, 8 GB/s", in);
        in.hw = core::hbmU50();
        core::SearchSpace hbm_space;
        hbm_space.withPresorter = false;
        show("HBM, 512 GB/s", in, hbm_space);
    }
    {
        std::printf("  %-28s -> two-phase:\n", "SSD-backed, 2 TB");
        model::ArrayParams array{2 * kTB / 4, 4};
        const auto plan = core::planSsdSort(array, core::awsF1(), {},
                                            core::SsdParams{});
        if (plan) {
            std::printf("     phase 1: %u x pipelined AMT(%u, %u); "
                        "phase 2: AMT(%u, %u); total %.0f s\n",
                        plan->phase1.config.lambdaPipe,
                        plan->phase1.config.p, plan->phase1.config.ell,
                        plan->phase2.config.p, plan->phase2.config.ell,
                        plan->totalSeconds());
        }
    }

    std::printf("\n3. Adapting to record width (16 GB input, F1):\n");
    for (std::uint64_t r : {4u, 8u, 16u, 64u}) {
        model::BonsaiInputs in;
        in.array = {16ULL * kGB / r, r};
        in.hw = core::awsF1();
        char label[32];
        std::snprintf(label, sizeof(label), "%llu-byte records",
                      static_cast<unsigned long long>(r));
        show(label, in);
    }

    std::printf("\n4. Ranked fallbacks (16 GB, F1) — the top five "
                "configurations:\n");
    {
        model::BonsaiInputs in;
        in.array = {16ULL * kGB / 4, 4};
        in.hw = core::awsF1();
        core::Optimizer opt(in);
        const auto ranked = opt.rank(core::Objective::Latency);
        for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
            const auto &rc = ranked[i];
            std::printf("  #%zu: %2u x AMT(%2u, %3u)  %7.3f s  "
                        "%6.0fk LUT\n",
                        i + 1, rc.config.lambdaUnrl, rc.config.p,
                        rc.config.ell, rc.perf.latencySeconds,
                        rc.resources.totalLut() / 1000.0);
        }
    }
    return 0;
}
