/**
 * @file
 * Quickstart: sort an in-memory array with the Bonsai DRAM sorter.
 *
 * Demonstrates the three things the library gives you:
 *  1. the Bonsai optimizer picking the AMT configuration for your
 *     hardware and problem size,
 *  2. an actual sort of your data following that configuration's
 *     stage plan,
 *  3. the modeled FPGA sorting time for the same workload at paper
 *     scale.
 *
 * Build & run:  ./build/examples/quickstart [num_records]
 *                                           [--threads N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "sorter/sorters.hpp"

int
main(int argc, char **argv)
{
    using namespace bonsai;
    std::size_t n = 1'000'000;
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        else
            n = std::strtoull(argv[i], nullptr, 10);
    }

    std::printf("Bonsai quickstart: sorting %zu records (32-bit keys, "
                "%u host thread%s)\n",
                n, threads, threads == 1 ? "" : "s");
    auto data = makeRecords(n, Distribution::UniformRandom);

    sorter::DramSorter sorter; // AWS F1 preset (Section IV-A)
    sorter.setThreads(threads); // byte-identical for any thread count
    const sorter::SortReport report = sorter.sort(data, /*r=*/4);

    if (!isSorted(std::span<const Record>(data))) {
        std::printf("ERROR: output is not sorted!\n");
        return 1;
    }

    std::printf("  selected config     : AMT(%u, %u), x%u unrolled\n",
                report.config.p, report.config.ell,
                report.config.lambdaUnrl);
    std::printf("  merge stages        : %u\n", report.stages);
    std::printf("  modeled FPGA time   : %.3f ms (%.1f ms/GB)\n",
                toMs(report.modeledSeconds),
                report.modeledMsPerGb(n * 4));
    std::printf("  closed-form (Eq. 1) : %.3f ms\n",
                toMs(report.predictedSeconds));
    std::printf("  host execution time : %.3f ms\n",
                toMs(report.hostSeconds));
    std::printf("  output sorted       : yes\n");
    return 0;
}
