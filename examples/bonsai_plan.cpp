/**
 * @file
 * bonsai_plan: the optimizer as a command-line planning tool — what a
 * datacenter engineer would run to configure the FPGA for their
 * workload and hardware (the adaptivity story of Section I).
 *
 *   bonsai_plan [--size BYTES|4GB|2TB] [--record BYTES]
 *               [--bw GB/s] [--io GB/s] [--dram BYTES]
 *               [--lut N] [--objective latency|throughput]
 *               [--derate] [--top N]
 *
 * Prints the ranked feasible AMT configurations with modeled
 * latency/throughput and resource budgets, or the two-phase SSD plan
 * when the array exceeds DRAM capacity.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bonsai.hpp"

namespace
{

using namespace bonsai;

std::uint64_t
parseSize(const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    std::string suffix = end ? end : "";
    if (suffix == "KB" || suffix == "kb")
        return static_cast<std::uint64_t>(value * kKB);
    if (suffix == "MB" || suffix == "mb")
        return static_cast<std::uint64_t>(value * kMB);
    if (suffix == "GB" || suffix == "gb")
        return static_cast<std::uint64_t>(value * kGB);
    if (suffix == "TB" || suffix == "tb")
        return static_cast<std::uint64_t>(value * kTB);
    return static_cast<std::uint64_t>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t bytes = 16 * kGB;
    std::uint64_t record_bytes = 4;
    model::HardwareParams hw = core::awsF1();
    core::SsdParams ssd;
    bool throughput = false;
    bool derate = false;
    std::size_t top = 5;

    for (int i = 1; i < argc; ++i) {
        const auto is = [&](const char *flag) {
            return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
        };
        if (is("--size"))
            bytes = parseSize(argv[++i]);
        else if (is("--record"))
            record_bytes = std::strtoull(argv[++i], nullptr, 10);
        else if (is("--bw"))
            hw.betaDram = std::strtod(argv[++i], nullptr) * kGB;
        else if (is("--io"))
            hw.betaIo = std::strtod(argv[++i], nullptr) * kGB;
        else if (is("--dram"))
            hw.cDram = parseSize(argv[++i]);
        else if (is("--lut"))
            hw.cLut = std::strtoull(argv[++i], nullptr, 10);
        else if (is("--top"))
            top = std::strtoull(argv[++i], nullptr, 10);
        else if (is("--objective"))
            throughput = std::strcmp(argv[++i], "throughput") == 0;
        else if (std::strcmp(argv[i], "--derate") == 0)
            derate = true;
        else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: bonsai_plan [--size 16GB] [--record 4] "
                "[--bw 32] [--io 8]\n"
                "                   [--dram 64GB] [--lut 862128] "
                "[--objective latency|throughput]\n"
                "                   [--derate] [--top 5]\n");
            return 0;
        }
    }

    std::printf("Bonsai plan for %.2f GB of %llu-byte records, "
                "%.0f GB/s DRAM, %.0f GB/s I/O\n\n",
                toGb(bytes),
                static_cast<unsigned long long>(record_bytes),
                hw.betaDram / kGB, hw.betaIo / kGB);

    if (bytes > hw.cDram) {
        std::printf("Array exceeds DRAM capacity (%.0f GB): "
                    "two-phase SSD plan (Section IV-C)\n",
                    toGb(hw.cDram));
        model::ArrayParams array{bytes / record_bytes, record_bytes};
        const auto plan =
            core::planSsdSort(array, hw, {}, ssd);
        if (!plan) {
            std::printf("no feasible plan\n");
            return 1;
        }
        std::printf("  phase 1: %u x pipelined AMT(%u, %u) at "
                    "%.2f GB/s -> %.1f s\n",
                    plan->phase1.config.lambdaPipe,
                    plan->phase1.config.p, plan->phase1.config.ell,
                    plan->phase1.perf.throughputBytesPerSec / kGB,
                    plan->phase1Seconds);
        std::printf("  reprogram: %.1f s\n", plan->reprogramSeconds);
        std::printf("  phase 2: AMT(%u, %u), %u round trip(s) -> "
                    "%.1f s\n",
                    plan->phase2.config.p, plan->phase2.config.ell,
                    plan->phase2Stages, plan->phase2Seconds);
        std::printf("  total: %.1f s (%.2f GB/s)\n",
                    plan->totalSeconds(),
                    toGb(bytes) / plan->totalSeconds());
        return 0;
    }

    model::BonsaiInputs in;
    in.array = {bytes / record_bytes, record_bytes};
    in.hw = hw;
    in.arch.routingDerate = derate;
    core::Optimizer opt(in);
    const auto objective = throughput ? core::Objective::Throughput
                                      : core::Objective::Latency;
    const auto ranked = opt.rank(objective);
    if (ranked.empty()) {
        std::printf("no feasible configuration fits the chip\n");
        return 1;
    }
    std::printf("%-4s %-24s %8s %12s %12s %8s %6s\n", "#", "config",
                "stages", "latency(s)", "thpt(GB/s)", "LUT", "b");
    for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
        const auto &rc = ranked[i];
        char cfg[48];
        std::snprintf(cfg, sizeof(cfg), "%ux AMT(%u,%u)%s",
                      rc.config.lambdaUnrl, rc.config.p,
                      rc.config.ell,
                      rc.config.lambdaPipe > 1 ? " piped" : "");
        std::printf("%-4zu %-24s %8u %12.3f %12.2f %7lluk %6llu\n",
                    i + 1, cfg, rc.perf.stages,
                    rc.perf.latencySeconds,
                    rc.perf.throughputBytesPerSec / kGB,
                    static_cast<unsigned long long>(
                        rc.resources.totalLut() / 1000),
                    static_cast<unsigned long long>(rc.batchBytes));
    }
    return 0;
}
